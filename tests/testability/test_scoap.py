"""SCOAP controllability/observability: formulas, passes, summaries."""

import pytest

from repro.netlist import GateType, Netlist
from repro.netlist.netlist import CONST0, CONST1
from repro.testability import INF, compute_scoap, scoap_summary


def test_primary_input_and_constant_scores():
    nl = Netlist("pi")
    a = nl.add_input("a")
    buf = nl.add_gate(GateType.BUF, a)
    nl.mark_output(buf)
    nl.finalize()
    scores = compute_scoap(nl)
    assert scores.of_net(a) == (1, 1, 1)
    assert scores.cc0[CONST0] == 1 and scores.cc1[CONST0] == INF
    assert scores.cc0[CONST1] == INF and scores.cc1[CONST1] == 1


def test_and_or_controllability_formulas():
    nl = Netlist("andor")
    a, b = nl.add_input(), nl.add_input()
    g_and = nl.add_gate(GateType.AND, a, b)
    g_or = nl.add_gate(GateType.OR, a, b)
    g_nand = nl.add_gate(GateType.NAND, a, b)
    g_nor = nl.add_gate(GateType.NOR, a, b)
    g_not = nl.add_gate(GateType.NOT, a)
    for net in (g_and, g_or, g_nand, g_nor, g_not):
        nl.mark_output(net)
    nl.finalize()
    scores = compute_scoap(nl)
    # AND: cc0 = min(1,1)+1 = 2, cc1 = 1+1+1 = 3; OR mirrors.
    assert (scores.cc0[g_and], scores.cc1[g_and]) == (2, 3)
    assert (scores.cc0[g_or], scores.cc1[g_or]) == (3, 2)
    assert (scores.cc0[g_nand], scores.cc1[g_nand]) == (3, 2)
    assert (scores.cc0[g_nor], scores.cc1[g_nor]) == (2, 3)
    assert (scores.cc0[g_not], scores.cc1[g_not]) == (2, 2)


def test_xor_and_mux_controllability():
    nl = Netlist("xormux")
    a, b, s = nl.add_input(), nl.add_input(), nl.add_input()
    g_xor = nl.add_gate(GateType.XOR, a, b)
    g_mux = nl.add_gate(GateType.MUX, a, b, s)
    nl.mark_output(g_xor)
    nl.mark_output(g_mux)
    nl.finalize()
    scores = compute_scoap(nl)
    # XOR: cc0 = min(1+1, 1+1)+1 = 3 either way.
    assert (scores.cc0[g_xor], scores.cc1[g_xor]) == (3, 3)
    # MUX: min over the two select branches = (1+1)+1 = 3.
    assert (scores.cc0[g_mux], scores.cc1[g_mux]) == (3, 3)


def test_observability_backward_pass_folds_side_inputs():
    nl = Netlist("co")
    a, b = nl.add_input(), nl.add_input()
    g = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(g)
    nl.finalize()
    scores = compute_scoap(nl)
    assert scores.co[g] == 0
    # co(a) = co(g) + cc1(b) + 1 = 0 + 1 + 1.
    assert scores.co[a] == 2 and scores.co[b] == 2


def test_dangling_cone_is_unobservable():
    nl = Netlist("dangle")
    a = nl.add_input()
    seen = nl.add_gate(GateType.BUF, a)
    hidden = nl.add_gate(GateType.NOT, a)
    nl.mark_output(seen)
    nl.finalize()
    scores = compute_scoap(nl)
    assert scores.co[hidden] == INF
    assert scores.co[a] == 1


def test_reconvergent_fanout_keeps_scores_an_estimate():
    # XOR(a, a) is constant 0, but SCOAP still assigns a finite CC1 —
    # the documented reason scores rank but never prove.
    nl = Netlist("reconv")
    a = nl.add_input()
    g = nl.add_gate(GateType.XOR, a, a)
    nl.mark_output(g)
    nl.finalize()
    scores = compute_scoap(nl)
    assert scores.cc1[g] != INF


def test_observed_override_changes_the_co_pass():
    nl = Netlist("override")
    a = nl.add_input()
    mid = nl.add_gate(GateType.BUF, a)
    out = nl.add_gate(GateType.NOT, mid)
    nl.mark_output(out)
    nl.finalize()
    default = compute_scoap(nl)
    assert default.co[mid] == 1
    override = compute_scoap(nl, observed=[mid])
    assert override.co[mid] == 0
    assert override.co[out] == INF


def test_scoap_summary_shape():
    nl = Netlist("summary")
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.BUF, a))
    nl.finalize()
    summary = scoap_summary(compute_scoap(nl))
    assert set(summary) == {"cc0", "cc1", "co"}
    for stats in summary.values():
        assert set(stats) == {"max", "mean", "unreachable"}
    # CONST0/CONST1 each have one uncontrollable polarity.
    assert summary["cc0"]["unreachable"] == 1
    assert summary["cc1"]["unreachable"] == 1


def test_unknown_gate_type_raises():
    from repro.errors import FaultSimError
    from repro.testability.scoap import _gate_controllability, _sensitize_cost
    with pytest.raises(FaultSimError):
        _gate_controllability("bogus", (0,), [0], [0])
    with pytest.raises(FaultSimError):
        _sensitize_cost("bogus", (0,), 0, [0], [0])
