"""Cross-PTP fault dropping (FaultListReport)."""

import pytest

from repro.errors import FaultSimError
from repro.faults import FaultListReport
from repro.netlist import GateType, Netlist


def _netlist():
    nl = Netlist("d")
    a = nl.add_input()
    b = nl.add_input()
    x = nl.add_gate(GateType.AND, a, b)
    y = nl.add_gate(GateType.XOR, x, b)
    nl.mark_output(y)
    nl.finalize()
    return nl


def test_initially_full():
    report = FaultListReport(_netlist())
    assert report.remaining_faults == report.total_faults
    assert report.detected_faults == 0
    assert report.coverage() == 0.0


def test_drop_shrinks_remaining():
    report = FaultListReport(_netlist())
    victims = list(report.remaining)[:3]
    dropped = report.drop(victims, "IMM")
    assert dropped == 3
    assert report.remaining_faults == report.total_faults - 3
    assert all(report.detected_by(v) == "IMM" for v in victims)


def test_double_drop_is_idempotent():
    report = FaultListReport(_netlist())
    victims = list(report.remaining)[:2]
    report.drop(victims, "IMM")
    assert report.drop(victims, "MEM") == 0  # already gone, counted once
    assert report.detected_by(victims[0]) == "IMM"


def test_unknown_fault_rejected():
    from repro.faults import OUTPUT_PIN, StuckAtFault

    report = FaultListReport(_netlist())
    bogus = StuckAtFault(999, None, OUTPUT_PIN, 0)
    with pytest.raises(FaultSimError):
        report.drop([bogus], "X")


def test_coverage_accumulates_across_ptps():
    report = FaultListReport(_netlist())
    total = report.total_faults
    first = list(report.remaining)[: total // 2]
    report.drop(first, "IMM")
    second = list(report.remaining)[:2]
    report.drop(second, "MEM")
    assert report.detected_faults == len(first) + 2
    assert report.coverage() == pytest.approx(
        100.0 * (len(first) + 2) / total)


def test_reset_restores_everything():
    report = FaultListReport(_netlist())
    report.drop(list(report.remaining)[:4], "IMM")
    report.reset()
    assert report.remaining_faults == report.total_faults
    assert report.detected_by(report.full_list[0]) is None


# -- checkpoint state serialization --------------------------------------


def test_state_round_trip_is_bit_identical():
    report = FaultListReport(_netlist())
    report.drop(list(report.remaining)[:3], "IMM")
    report.drop(list(report.remaining)[:2], "MEM")
    state = report.state_dict()

    restored = FaultListReport(_netlist())
    restored.restore_state(state)
    assert list(restored.remaining) == list(report.remaining)
    assert restored.remaining_faults == report.remaining_faults
    assert all(restored.detected_by(f) == report.detected_by(f)
               for f in report.full_list)
    assert restored.coverage() == report.coverage()


def test_state_is_json_serializable():
    import json

    report = FaultListReport(_netlist())
    report.drop(list(report.remaining)[:3], "IMM")
    round_tripped = json.loads(json.dumps(report.state_dict()))
    restored = FaultListReport(_netlist())
    restored.restore_state(round_tripped)
    assert list(restored.remaining) == list(report.remaining)


def test_restored_state_continues_dropping_identically():
    """Drop A, snapshot, drop B — must equal restore-then-drop-B."""
    straight = FaultListReport(_netlist())
    straight.drop(list(straight.remaining)[:3], "A")
    state = straight.state_dict()
    straight.drop(list(straight.remaining)[:4], "B")

    resumed = FaultListReport(_netlist())
    resumed.restore_state(state)
    resumed.drop(list(resumed.remaining)[:4], "B")
    assert list(resumed.remaining) == list(straight.remaining)
    assert resumed.state_dict() == straight.state_dict()


def test_restore_rejects_wrong_fault_list_size():
    report = FaultListReport(_netlist())
    with pytest.raises(FaultSimError, match="faults"):
        report.restore_state({"total_faults": 1, "detected": []})


def test_restore_rejects_out_of_range_ids():
    report = FaultListReport(_netlist())
    state = {"total_faults": report.total_faults,
             "detected": [[report.total_faults + 5, "IMM"]]}
    with pytest.raises(FaultSimError, match="outside"):
        report.restore_state(state)


def test_empty_state_restores_full_list():
    report = FaultListReport(_netlist())
    fresh_state = report.state_dict()
    report.drop(list(report.remaining)[:3], "IMM")
    report.restore_state(fresh_state)
    assert report.remaining_faults == report.total_faults
    assert report.detected_by(report.full_list[0]) is None
