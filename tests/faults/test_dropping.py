"""Cross-PTP fault dropping (FaultListReport)."""

import pytest

from repro.errors import FaultSimError
from repro.faults import FaultListReport
from repro.netlist import GateType, Netlist


def _netlist():
    nl = Netlist("d")
    a = nl.add_input()
    b = nl.add_input()
    x = nl.add_gate(GateType.AND, a, b)
    y = nl.add_gate(GateType.XOR, x, b)
    nl.mark_output(y)
    nl.finalize()
    return nl


def test_initially_full():
    report = FaultListReport(_netlist())
    assert report.remaining_faults == report.total_faults
    assert report.detected_faults == 0
    assert report.coverage() == 0.0


def test_drop_shrinks_remaining():
    report = FaultListReport(_netlist())
    victims = list(report.remaining)[:3]
    dropped = report.drop(victims, "IMM")
    assert dropped == 3
    assert report.remaining_faults == report.total_faults - 3
    assert all(report.detected_by(v) == "IMM" for v in victims)


def test_double_drop_is_idempotent():
    report = FaultListReport(_netlist())
    victims = list(report.remaining)[:2]
    report.drop(victims, "IMM")
    assert report.drop(victims, "MEM") == 0  # already gone, counted once
    assert report.detected_by(victims[0]) == "IMM"


def test_unknown_fault_rejected():
    from repro.faults import OUTPUT_PIN, StuckAtFault

    report = FaultListReport(_netlist())
    bogus = StuckAtFault(999, None, OUTPUT_PIN, 0)
    with pytest.raises(FaultSimError):
        report.drop([bogus], "X")


def test_coverage_accumulates_across_ptps():
    report = FaultListReport(_netlist())
    total = report.total_faults
    first = list(report.remaining)[: total // 2]
    report.drop(first, "IMM")
    second = list(report.remaining)[:2]
    report.drop(second, "MEM")
    assert report.detected_faults == len(first) + 2
    assert report.coverage() == pytest.approx(
        100.0 * (len(first) + 2) / total)


def test_reset_restores_everything():
    report = FaultListReport(_netlist())
    report.drop(list(report.remaining)[:4], "IMM")
    report.reset()
    assert report.remaining_faults == report.total_faults
    assert report.detected_by(report.full_list[0]) is None
