"""ATPG: PODEM on hand-built circuits, untestability, campaign behavior."""

import pytest

from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, PodemEngine, StuckAtFault, run_atpg
from repro.netlist import GateType, Netlist, PatternSet
from repro.netlist.modules import HardwareModule


def _chain():
    """out = NOT(AND(a, OR(b, c)))"""
    nl = Netlist("chain")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    o = nl.add_gate(GateType.OR, b, c)
    g = nl.add_gate(GateType.AND, a, o)
    out = nl.add_gate(GateType.NOT, g)
    nl.mark_output(out)
    nl.finalize()
    return nl, a, b, c, o, g, out


def _confirm(nl, fault, cube):
    patterns = PatternSet(nl)
    patterns.add({net: cube.get(net, 0) for net in nl.inputs})
    result = FaultSimulator(nl).run(patterns, FaultList(nl, [fault]))
    return result.num_detected == 1


@pytest.mark.parametrize("stuck_at", [0, 1])
def test_podem_generates_valid_tests_for_all_stem_faults(stuck_at):
    nl, a, b, c, o, g, out = _chain()
    engine = PodemEngine(nl)
    for net in (a, b, c, o, g, out):
        gate = nl.driver_of(net)
        fault = StuckAtFault(net, gate, OUTPUT_PIN, stuck_at)
        status, cube = engine.generate(fault)
        assert status == "detected", fault.describe(nl)
        assert _confirm(nl, fault, cube), fault.describe(nl)


def test_podem_proves_redundant_fault_untestable():
    # out = OR(a, NOT(a)) is constantly 1: its s-a-1 fault is untestable.
    nl = Netlist("red")
    a = nl.add_input("a")
    na = nl.add_gate(GateType.NOT, a)
    out = nl.add_gate(GateType.OR, a, na)
    nl.mark_output(out)
    nl.finalize()
    engine = PodemEngine(nl)
    status, __ = engine.generate(StuckAtFault(out, 1, OUTPUT_PIN, 1))
    assert status == "untestable"


def test_podem_handles_input_pin_faults():
    nl, a, b, c, o, g, out = _chain()
    engine = PodemEngine(nl)
    # AND gate's pin reading `o`, stuck-at-1 (branch fault).
    and_gate = nl.driver_of(g)
    fault = StuckAtFault(o, and_gate, 1, 1)
    status, cube = engine.generate(fault)
    assert status == "detected"
    assert _confirm(nl, fault, cube)


def test_podem_respects_backtrack_limit():
    nl, *_ = _chain()
    engine = PodemEngine(nl, max_backtracks=0)
    # With zero backtracks some faults may still pass (first try), but the
    # engine must never raise.
    for fault in FaultList(nl):
        status, __ = engine.generate(fault)
        assert status in ("detected", "untestable", "aborted")


def _module(nl):
    return HardwareModule(name=nl.name, netlist=nl,
                          input_words={"in": list(nl.inputs)},
                          output_words={"out": list(nl.outputs)})


def test_run_atpg_full_campaign_high_coverage():
    nl, *_ = _chain()
    result = run_atpg(_module(nl), seed=3, random_patterns=16)
    fl = FaultList(nl)
    # The chain circuit has no redundancy: everything should be detected.
    assert not result.aborted
    assert not result.untestable
    assert result.coverage(len(fl)) == pytest.approx(100.0)
    # Every emitted pattern is attributed at least one fault.
    assert len(result.pattern_faults) == result.patterns.count
    replay = FaultSimulator(nl).run(result.patterns, fl)
    assert replay.num_detected == len(fl)


def test_run_atpg_is_deterministic():
    nl1, *_ = _chain()
    nl2, *_ = _chain()
    r1 = run_atpg(_module(nl1), seed=9, random_patterns=8)
    r2 = run_atpg(_module(nl2), seed=9, random_patterns=8)
    assert r1.patterns.count == r2.patterns.count
    assert [sorted(f.net for f in group) for group in r1.pattern_faults] \
        == [sorted(f.net for f in group) for group in r2.pattern_faults]


def test_run_atpg_random_phase_stops_when_everything_detected():
    nl, *_ = _chain()
    result = run_atpg(_module(nl), seed=1, random_patterns=4096,
                      random_batch=16)
    # Far fewer patterns than requested: dropping empties the list early.
    assert result.patterns.count < 200
