"""Signature-observability fault simulation: aliasing semantics.

Cross-checks ``FaultSimulator.run_signature`` against a brute-force
reference that rebuilds each thread's corrupted result sequence and folds
it through the software MISR model.
"""

import random

from repro.faults import FaultList, FaultSimulator
from repro.netlist import GateType, LogicSimulator, Netlist, PatternSet
from repro.stl.signature import misr_fold


def _identity_module(width=4):
    """result = a (BUF word): fault effects are fully transparent."""
    nl = Netlist("ident")
    a = nl.add_inputs(width, "a")
    out = [nl.add_gate(GateType.BUF, bit) for bit in a]
    for net in out:
        nl.mark_output(net)
    nl.finalize()
    return nl, a, out


def test_signature_detection_matches_brute_force():
    width = 4
    nl, a, out = _identity_module(width)
    rng = random.Random(7)
    values = [rng.getrandbits(width) for __ in range(40)]
    patterns = PatternSet(nl)
    for value in values:
        patterns.add_words([(a, value)])
    # Two interleaved threads.
    sequences = {(0, t): [k for k in range(40) if k % 2 == t]
                 for t in range(2)}
    fault_list = FaultList(nl)
    simulator = FaultSimulator(nl)
    result, signature_detected = simulator.run_signature(
        patterns, fault_list, out, sequences)

    good = LogicSimulator(nl).run(patterns)
    for fault, word, sig_hit in zip(fault_list, result.detection_words,
                                    signature_detected):
        # Brute force: rebuild each thread's good and corrupted result
        # sequences from the propagated fault effects and fold both
        # through the software MISR model.
        expected = False
        changed = simulator._propagate_fault(fault, good, patterns.mask)
        for key, seq in sequences.items():
            diffs = []
            for k in seq:
                diff_value = 0
                for i, net in enumerate(out):
                    good_bit = (good[net] >> k) & 1
                    bad_bit = ((changed.get(net, good[net]) >> k) & 1)
                    diff_value |= (good_bit ^ bad_bit) << i
                diffs.append(diff_value)
            good_values = []
            bad_values = []
            for k, diff in zip(seq, diffs):
                value = 0
                for i, net in enumerate(out):
                    value |= ((good[net] >> k) & 1) << i
                good_values.append(value)
                bad_values.append(value ^ diff)
            if misr_fold(good_values, width) != misr_fold(bad_values,
                                                          width):
                expected = True
                break
        assert sig_hit == expected, fault.describe(nl)


def test_engineered_aliasing_case():
    """A fault excited exactly twice, `width` updates apart with equal
    diffs, aliases in the MISR (rotation period cancellation)."""
    width = 4
    nl, a, out = _identity_module(width)
    # Single thread; craft the pattern stream so a s-a-0 on a[0] is excited
    # at positions 0 and 4 only (value bit0 = 1 there, 0 elsewhere).
    stream = [0b0001, 0b0000, 0b0010, 0b0100, 0b0001, 0b0000, 0b0110,
              0b1000]
    patterns = PatternSet(nl)
    for value in stream:
        patterns.add_words([(a, value)])
    sequences = {(0, 0): list(range(len(stream)))}
    from repro.faults import OUTPUT_PIN, StuckAtFault

    fault = StuckAtFault(a[0], None, OUTPUT_PIN, 0)
    fault_list = FaultList(nl, [fault])
    result, signature_detected = FaultSimulator(nl).run_signature(
        patterns, fault_list, out, sequences, misr_width=width)
    # Module-output observability sees it (twice), ...
    assert result.detection_words[0] == 0b0001_0001
    # ... but the two equal diffs rotate onto each other and cancel:
    # positions 0 and 4, rotations (8-1-0)%4 == (8-1-4)%4 == 3.
    assert signature_detected[0] is False


def test_truncated_misr_ignores_result_bits_beyond_width():
    """Result-bus bits at positions >= misr_width never enter the MISR
    (``misr_update`` masks every folded value), so a fault whose only
    effect lands on such a bit must be sig-undetected.

    Regression: the fold used to build diff words over the full result
    bus, and a diff bit ``1 << i`` with ``i >= width`` escaped
    ``word_mask`` on the rotation-0 path — exactly this fault was
    spuriously reported as signature-detected.
    """
    width = 4
    nl, a, out = _identity_module(width)
    patterns = PatternSet(nl)
    # Single excitation at the LAST sequence position (rotation 0).
    patterns.add_words([(a, 0b0000)])
    patterns.add_words([(a, 0b1000)])
    sequences = {(0, 0): [0, 1]}
    from repro.faults import OUTPUT_PIN, StuckAtFault

    fault = StuckAtFault(a[3], None, OUTPUT_PIN, 0)  # flips bit 3 only
    for engine in ("event", "cone"):
        simulator = FaultSimulator(nl, engine=engine)
        result, signature_detected = simulator.run_signature(
            patterns, FaultList(nl, [fault]), out, sequences, misr_width=2)
        # Module outputs see the flip; the 2-bit signature cannot.
        assert result.detection_words == [0b10], engine
        assert signature_detected == [False], engine
    # Same fault on a bit the truncated MISR does cover is detected.
    low_fault = StuckAtFault(a[0], None, OUTPUT_PIN, 1)
    __, detected = FaultSimulator(nl).run_signature(
        patterns, FaultList(nl, [low_fault]), out, sequences, misr_width=2)
    assert detected == [True]


def test_truncated_misr_matches_brute_force_on_both_engines():
    """misr_width = len(result_word) - 1 cross-check: the fold must agree
    with explicitly re-folding good and corrupted result sequences through
    the software MISR at the truncated width."""
    width = 4
    misr_width = width - 1
    nl, a, out = _identity_module(width)
    rng = random.Random(21)
    patterns = PatternSet(nl)
    count = 24
    for __ in range(count):
        patterns.add_words([(a, rng.getrandbits(width))])
    sequences = {(0, t): [k for k in range(count) if k % 2 == t]
                 for t in range(2)}
    fault_list = FaultList(nl)
    good = LogicSimulator(nl).run(patterns)
    reference = FaultSimulator(nl, engine="cone")
    for engine in ("event", "cone"):
        simulator = FaultSimulator(nl, engine=engine)
        __, signature_detected = simulator.run_signature(
            patterns, fault_list, out, sequences, misr_width=misr_width)
        for fault, sig_hit in zip(fault_list, signature_detected):
            changed = reference._propagate_fault(fault, good, patterns.mask)
            expected = False
            for seq in sequences.values():
                good_values = []
                bad_values = []
                for k in seq:
                    value = 0
                    bad = 0
                    for i, net in enumerate(out):
                        value |= ((good[net] >> k) & 1) << i
                        bad |= ((changed.get(net, good[net]) >> k) & 1) << i
                    good_values.append(value)
                    bad_values.append(bad)
                if misr_fold(good_values, misr_width) != misr_fold(
                        bad_values, misr_width):
                    expected = True
                    break
            assert sig_hit == expected, (engine, fault.describe(nl))


def test_unexcited_fault_is_sig_undetected():
    width = 4
    nl, a, out = _identity_module(width)
    patterns = PatternSet(nl)
    patterns.add_words([(a, 0b0001)])
    from repro.faults import OUTPUT_PIN, StuckAtFault

    fault = StuckAtFault(a[0], None, OUTPUT_PIN, 1)  # already 1: no effect
    result, signature_detected = FaultSimulator(nl).run_signature(
        patterns, FaultList(nl, [fault]), out, {(0, 0): [0]},
        misr_width=width)
    assert result.detection_words == [0]
    assert signature_detected == [False]
