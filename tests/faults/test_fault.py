"""Fault model: enumeration, collapsing rules, fault lists."""

import pytest

from repro.errors import FaultSimError
from repro.faults import OUTPUT_PIN, FaultList, StuckAtFault, enumerate_faults
from repro.netlist import CONST0, GateType, Netlist


def _net():
    nl = Netlist("f")
    a = nl.add_input("a")
    b = nl.add_input("b")
    x = nl.add_gate(GateType.AND, a, b)       # gate 0
    y = nl.add_gate(GateType.NOT, x)          # gate 1
    z = nl.add_gate(GateType.OR, x, b)        # gate 2 (x and b have fanout 2)
    nl.mark_output(y)
    nl.mark_output(z)
    nl.finalize()
    return nl, a, b, x, y, z


def test_stem_faults_on_all_inputs_and_gate_outputs():
    nl, a, b, x, y, z = _net()
    faults = enumerate_faults(nl, collapse=False)
    stems = {(f.net, f.stuck_at) for f in faults if f.is_stem()}
    for net in (a, b, x, y, z):
        assert (net, 0) in stems and (net, 1) in stems


def test_collapse_drops_not_buf_input_faults():
    nl, a, b, x, y, z = _net()
    faults = enumerate_faults(nl, collapse=True)
    assert not any(f.gate == 1 and not f.is_stem() for f in faults)


def test_collapse_drops_controlling_input_faults():
    nl, a, b, x, y, z = _net()
    faults = enumerate_faults(nl, collapse=True)
    # AND input s-a-0 is equivalent to output s-a-0: dropped.
    assert not any(f.gate == 0 and not f.is_stem() and f.stuck_at == 0
                   for f in faults)
    # OR input s-a-1 equivalent to output s-a-1: dropped.
    assert not any(f.gate == 2 and not f.is_stem() and f.stuck_at == 1
                   for f in faults)


def test_collapse_keeps_noncontrolling_faults_on_fanout_nets():
    nl, a, b, x, y, z = _net()
    faults = enumerate_faults(nl, collapse=True)
    # b feeds gates 0 and 2 (fanout): AND pin s-a-1 branch fault survives.
    assert any(f.gate == 0 and f.net == b and f.stuck_at == 1
               and not f.is_stem() for f in faults)


def test_collapsed_is_subset_of_uncollapsed():
    nl, *_ = _net()
    collapsed = set(enumerate_faults(nl, collapse=True))
    full = set(enumerate_faults(nl, collapse=False))
    assert collapsed < full


def test_constant_tied_pins_skipped():
    nl = Netlist("c")
    a = nl.add_input()
    x = nl.add_gate(GateType.AND, a, CONST0)
    nl.mark_output(x)
    nl.finalize()
    faults = enumerate_faults(nl, collapse=False)
    assert not any(f.net == CONST0 for f in faults)


def test_enumeration_is_deterministic():
    nl1, *_ = _net()
    nl2, *_ = _net()
    assert enumerate_faults(nl1) == enumerate_faults(nl2)


def test_fault_list_ids_and_without():
    nl, *_ = _net()
    fl = FaultList(nl)
    assert len(fl) > 0
    first = fl[0]
    assert fl.id_of(first) == 0
    smaller = fl.without([first])
    assert len(smaller) == len(fl) - 1
    assert first not in set(smaller)


def test_fault_list_rejects_duplicates():
    nl, a, *_ = _net()
    fault = StuckAtFault(a, None, OUTPUT_PIN, 0)
    with pytest.raises(FaultSimError):
        FaultList(nl, [fault, fault])


def test_describe_mentions_site():
    nl, a, *_ = _net()
    fault = StuckAtFault(a, None, OUTPUT_PIN, 1)
    text = fault.describe(nl)
    assert "s-a-1" in text and "a" in text
