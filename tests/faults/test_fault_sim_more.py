"""Additional fault-simulator behaviors: coverage math, result views."""

import pytest

from repro.errors import FaultSimError
from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, StuckAtFault
from repro.netlist import GateType, Netlist, PatternSet


def _nl():
    nl = Netlist("t")
    a = nl.add_input("a")
    b = nl.add_input("b")
    x = nl.add_gate(GateType.OR, a, b)
    nl.mark_output(x)
    nl.finalize()
    return nl, a, b, x


def test_coverage_with_custom_denominator():
    nl, a, b, x = _nl()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    fl = FaultList(nl, [StuckAtFault(x, 0, OUTPUT_PIN, 0),
                        StuckAtFault(x, 0, OUTPUT_PIN, 1)])
    result = FaultSimulator(nl).run(patterns, fl)
    assert result.num_detected == 1
    assert result.coverage() == pytest.approx(50.0)
    assert result.coverage(total=10) == pytest.approx(10.0)


def test_detected_and_undetected_views():
    nl, a, b, x = _nl()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    fl = FaultList(nl, [StuckAtFault(x, 0, OUTPUT_PIN, 0),
                        StuckAtFault(x, 0, OUTPUT_PIN, 1)])
    result = FaultSimulator(nl).run(patterns, fl)
    assert result.detected_faults == [fl[0]]
    assert result.undetected_faults == [fl[1]]


def test_bad_observed_output_rejected():
    nl, a, b, x = _nl()
    with pytest.raises(FaultSimError):
        FaultSimulator(nl, observed_outputs=[a])


def test_coverage_of_empty_list():
    nl, *_ = _nl()
    patterns = PatternSet(nl)
    patterns.add({})
    result = FaultSimulator(nl).run(patterns, FaultList(nl, []))
    assert result.coverage() == 0.0


def test_identical_fault_lists_give_identical_results():
    nl1, a1, b1, x1 = _nl()
    patterns = PatternSet(nl1)
    for av, bv in ((0, 0), (1, 0), (0, 1), (1, 1)):
        patterns.add({a1: av, b1: bv})
    sim = FaultSimulator(nl1)
    first = sim.run(patterns)
    second = sim.run(patterns)
    assert first.detection_words == second.detection_words


def test_detection_word_bits_within_pattern_mask():
    nl, a, b, x = _nl()
    patterns = PatternSet(nl)
    for av, bv in ((1, 1), (0, 0), (1, 0)):
        patterns.add({a: av, b: bv})
    result = FaultSimulator(nl).run(patterns)
    for word in result.detection_words:
        assert word >> patterns.count == 0
