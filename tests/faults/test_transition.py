"""Transition-delay fault model (the paper's future-work extension)."""

import pytest

from repro.faults import (
    FALL,
    RISE,
    TransitionFault,
    TransitionFaultSimulator,
    enumerate_transition_faults,
)
from repro.netlist import GateType, Netlist, PatternSet


def _buf():
    nl = Netlist("buf")
    a = nl.add_input("a")
    out = nl.add_gate(GateType.BUF, a)
    nl.mark_output(out)
    nl.finalize()
    return nl, a, out


def test_enumeration_covers_both_edges():
    nl, a, out = _buf()
    faults = enumerate_transition_faults(nl)
    assert TransitionFault(a, RISE) in faults
    assert TransitionFault(a, FALL) in faults
    assert TransitionFault(out, RISE) in faults
    assert len(faults) == 4


def test_rise_needs_zero_to_one_launch():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for value in (0, 1, 1, 0, 1):
        patterns.add({a: value})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    # Launches at pattern 1 (0->1) and 4 (0->1); capture propagates.
    assert result.detection_words[0] == 0b10010
    assert result.first_detection[0] == 1


def test_fall_needs_one_to_zero_launch():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for value in (1, 0, 0, 1, 0):
        patterns.add({a: value})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, FALL)])
    assert result.detection_words[0] == 0b10010
    assert result.first_detection[0] == 1


def test_first_pattern_never_detects():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    patterns.add({a: 1})  # would need a predecessor for the launch
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    assert result.first_detection == [None]


def test_constant_stream_detects_nothing():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for __ in range(5):
        patterns.add({a: 1})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns)
    assert result.num_detected == 0


def test_capture_must_propagate():
    # out = AND(a, b): a rise on `a` launched while b=0 is not captured.
    nl = Netlist("and")
    a = nl.add_input("a")
    b = nl.add_input("b")
    out = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(out)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 0, b: 0})
    patterns.add({a: 1, b: 0})  # launch without propagation (b blocks)
    patterns.add({a: 0, b: 1})
    patterns.add({a: 1, b: 1})  # launch AND capture
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    assert result.detection_words[0] == 0b1000
    assert result.first_detection[0] == 3


def test_transition_coverage_below_stuck_at():
    """Transition detection requires launch + capture, so a pattern set's
    transition coverage never exceeds its stem stuck-at coverage."""
    import random

    from repro.faults import FaultList, FaultSimulator
    from repro.netlist.modules import build_sp_core

    sp = build_sp_core(8)
    rng = random.Random(5)
    patterns = sp.new_pattern_set()
    for __ in range(60):
        sp.add_pattern(patterns, op=rng.randrange(15),
                       cmp=rng.randrange(6), a=rng.getrandbits(8),
                       b=rng.getrandbits(8), c=rng.getrandbits(8))
    transition = TransitionFaultSimulator(sp.netlist).run(patterns)
    stems = [f for f in FaultList(sp.netlist) if f.is_stem()]
    stuck = FaultSimulator(sp.netlist).run(
        patterns, FaultList(sp.netlist, stems))
    assert 0 < transition.num_detected
    assert transition.coverage() <= stuck.coverage() + 1e-9


def test_equivalent_stuck_at_maps_edges_to_capture_values():
    """Slow-to-rise captures as stuck-at-0, slow-to-fall as stuck-at-1
    (the launch drives the net toward the value the slow net misses)."""
    assert TransitionFault(3, RISE).equivalent_stuck_at() == 0
    assert TransitionFault(3, FALL).equivalent_stuck_at() == 1
    nl, a, out = _buf()
    for fault in enumerate_transition_faults(nl):
        expected = 0 if fault.edge == RISE else 1
        assert fault.equivalent_stuck_at() == expected


def test_stem_proxy_builds_the_equivalent_stuck_at_site():
    from repro.errors import FaultSimError
    from repro.faults import OUTPUT_PIN
    from repro.faults.transition import _stem_proxy

    nl, a, out = _buf()
    proxy = _stem_proxy(nl, out, TransitionFault(out, RISE)
                        .equivalent_stuck_at())
    assert proxy.net == out
    assert proxy.gate == nl.driver_of(out)
    assert proxy.pin == OUTPUT_PIN
    assert proxy.stuck_at == 0
    pi_proxy = _stem_proxy(nl, a, 1)
    assert pi_proxy.gate is None and pi_proxy.stuck_at == 1
    with pytest.raises(FaultSimError):
        _stem_proxy(nl, 10 ** 6, 0)


def test_transition_detection_is_equivalent_stuck_at_gated_by_launch():
    """The load-bearing identity of the model: the transition detection
    word is exactly the equivalent stuck-at stem fault's detection word
    masked by the launch cycles."""
    import random

    from repro.faults import FaultSimulator
    from repro.faults.fault import FaultList
    from repro.faults.transition import _stem_proxy

    nl = Netlist("gated")
    a, b, c = (nl.add_input() for __ in range(3))
    g1 = nl.add_gate(GateType.AND, a, b)
    g2 = nl.add_gate(GateType.XOR, g1, c)
    nl.mark_output(g2)
    nl.finalize()
    rng = random.Random(11)
    patterns = PatternSet(nl)
    for __ in range(12):
        patterns.add({net: rng.getrandbits(1) for net in nl.inputs})

    transition_faults = enumerate_transition_faults(nl)
    result = TransitionFaultSimulator(nl).run(patterns, transition_faults)
    proxies = FaultList(nl, [
        _stem_proxy(nl, f.net, f.equivalent_stuck_at())
        for f in transition_faults])
    stuck = FaultSimulator(nl).run(patterns, proxies)
    good = FaultSimulator(nl)._logic.run(patterns)
    mask = patterns.mask
    for i, fault in enumerate(transition_faults):
        value = good[fault.net]
        if fault.edge == RISE:
            launch = (~(value << 1)) & value & mask
        else:
            launch = (value << 1) & (~value) & mask
        launch &= ~1
        assert result.detection_words[i] == \
            stuck.detection_words[i] & launch


def test_campaign_level_transition_mapping_on_generator_ptp(du_module, gpu):
    """Campaign-level mapping check over a real generator PTP's traced
    patterns: every transition detection cycle is also a detection cycle
    of the equivalent stuck-at stem fault (launch gating only removes
    cycles, never adds them)."""
    from repro.core import run_logic_tracing
    from repro.faults import FaultList, FaultSimulator
    from repro.faults.transition import _stem_proxy
    from repro.stl import generate_imm

    ptp = generate_imm(seed=7, num_sbs=10)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    patterns = tracing.pattern_report.to_pattern_set()

    transition_faults = enumerate_transition_faults(du_module.netlist)
    result = TransitionFaultSimulator(du_module.netlist).run(
        patterns, transition_faults)
    proxies = FaultList(du_module.netlist, [
        _stem_proxy(du_module.netlist, f.net, f.equivalent_stuck_at())
        for f in transition_faults])
    stuck = FaultSimulator(du_module.netlist).run(patterns, proxies)

    detected = 0
    for i in range(len(transition_faults)):
        word = result.detection_words[i]
        assert word & ~stuck.detection_words[i] == 0
        detected += 1 if word else 0
    assert 0 < detected < len(transition_faults)


def test_pipeline_stages_compose_with_transition_model(du_module, gpu):
    """Stages 1-4 run unchanged against the transition-fault report
    (Section V: 'the same compaction approach can be adapted')."""
    from repro.core import label_instructions, partition_ptp, reduce_ptp, run_logic_tracing
    from repro.stl import generate_imm

    ptp = generate_imm(seed=21, num_sbs=12)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    patterns = tracing.pattern_report.to_pattern_set()
    result = TransitionFaultSimulator(du_module.netlist).run(patterns)
    partition = partition_ptp(ptp)
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition)
    assert labeled.num_essential > 0
    assert reduction.compacted.size <= ptp.size
    # The compacted PTP still executes.
    out = run_logic_tracing(reduction.compacted, du_module, gpu=gpu)
    assert out.cycles > 0
