"""Transition-delay fault model (the paper's future-work extension)."""

from repro.faults import (FALL, RISE, TransitionFault,
                          TransitionFaultSimulator,
                          enumerate_transition_faults)
from repro.netlist import GateType, Netlist, PatternSet


def _buf():
    nl = Netlist("buf")
    a = nl.add_input("a")
    out = nl.add_gate(GateType.BUF, a)
    nl.mark_output(out)
    nl.finalize()
    return nl, a, out


def test_enumeration_covers_both_edges():
    nl, a, out = _buf()
    faults = enumerate_transition_faults(nl)
    assert TransitionFault(a, RISE) in faults
    assert TransitionFault(a, FALL) in faults
    assert TransitionFault(out, RISE) in faults
    assert len(faults) == 4


def test_rise_needs_zero_to_one_launch():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for value in (0, 1, 1, 0, 1):
        patterns.add({a: value})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    # Launches at pattern 1 (0->1) and 4 (0->1); capture propagates.
    assert result.detection_words[0] == 0b10010
    assert result.first_detection[0] == 1


def test_fall_needs_one_to_zero_launch():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for value in (1, 0, 0, 1, 0):
        patterns.add({a: value})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, FALL)])
    assert result.detection_words[0] == 0b10010
    assert result.first_detection[0] == 1


def test_first_pattern_never_detects():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    patterns.add({a: 1})  # would need a predecessor for the launch
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    assert result.first_detection == [None]


def test_constant_stream_detects_nothing():
    nl, a, out = _buf()
    patterns = PatternSet(nl)
    for __ in range(5):
        patterns.add({a: 1})
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns)
    assert result.num_detected == 0


def test_capture_must_propagate():
    # out = AND(a, b): a rise on `a` launched while b=0 is not captured.
    nl = Netlist("and")
    a = nl.add_input("a")
    b = nl.add_input("b")
    out = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(out)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 0, b: 0})
    patterns.add({a: 1, b: 0})  # launch without propagation (b blocks)
    patterns.add({a: 0, b: 1})
    patterns.add({a: 1, b: 1})  # launch AND capture
    sim = TransitionFaultSimulator(nl)
    result = sim.run(patterns, [TransitionFault(a, RISE)])
    assert result.detection_words[0] == 0b1000
    assert result.first_detection[0] == 3


def test_transition_coverage_below_stuck_at():
    """Transition detection requires launch + capture, so a pattern set's
    transition coverage never exceeds its stem stuck-at coverage."""
    import random

    from repro.faults import FaultList, FaultSimulator

    from repro.netlist.modules import build_sp_core

    sp = build_sp_core(8)
    rng = random.Random(5)
    patterns = sp.new_pattern_set()
    for __ in range(60):
        sp.add_pattern(patterns, op=rng.randrange(15),
                       cmp=rng.randrange(6), a=rng.getrandbits(8),
                       b=rng.getrandbits(8), c=rng.getrandbits(8))
    transition = TransitionFaultSimulator(sp.netlist).run(patterns)
    stems = [f for f in FaultList(sp.netlist) if f.is_stem()]
    stuck = FaultSimulator(sp.netlist).run(
        patterns, FaultList(sp.netlist, stems))
    assert 0 < transition.num_detected
    assert transition.coverage() <= stuck.coverage() + 1e-9


def test_pipeline_stages_compose_with_transition_model(du_module, gpu):
    """Stages 1-4 run unchanged against the transition-fault report
    (Section V: 'the same compaction approach can be adapted')."""
    from repro.core import (label_instructions, partition_ptp, reduce_ptp,
                            run_logic_tracing)
    from repro.stl import generate_imm

    ptp = generate_imm(seed=21, num_sbs=12)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    patterns = tracing.pattern_report.to_pattern_set()
    result = TransitionFaultSimulator(du_module.netlist).run(patterns)
    partition = partition_ptp(ptp)
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition)
    assert labeled.num_essential > 0
    assert reduction.compacted.size <= ptp.size
    # The compacted PTP still executes.
    out = run_logic_tracing(reduction.compacted, du_module, gpu=gpu)
    assert out.cycles > 0
