"""Fault simulator: hand-checked detections + brute-force cross-validation."""

import random

from hypothesis import given, settings, strategies as st

from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, StuckAtFault
from repro.faults.fault import enumerate_faults
from repro.netlist import GateType, LogicSimulator, Netlist, PatternSet
from repro.netlist.gates import evaluate


def _and_netlist():
    nl = Netlist("and2")
    a = nl.add_input("a")
    b = nl.add_input("b")
    out = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(out)
    nl.finalize()
    return nl, a, b, out


def test_known_detections_on_and_gate():
    nl, a, b, out = _and_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 1})  # detects out s-a-0, a s-a-0, b s-a-0
    patterns.add({a: 0, b: 1})  # detects out s-a-1, a s-a-1
    sim = FaultSimulator(nl)
    fl = FaultList(nl, [
        StuckAtFault(out, 0, OUTPUT_PIN, 0),
        StuckAtFault(out, 0, OUTPUT_PIN, 1),
        StuckAtFault(a, None, OUTPUT_PIN, 0),
        StuckAtFault(a, None, OUTPUT_PIN, 1),
        StuckAtFault(b, None, OUTPUT_PIN, 1),
    ])
    result = sim.run(patterns, fl)
    by_fault = dict(zip(fl, result.first_detection))
    assert by_fault[fl[0]] == 0          # out s-a-0 first seen at pattern 0
    assert by_fault[fl[1]] == 1          # out s-a-1 needs the 0-output case
    assert by_fault[fl[2]] == 0          # a s-a-0
    assert by_fault[fl[3]] == 1          # a s-a-1 with a=0,b=1
    assert by_fault[fl[4]] is None       # b s-a-1 never observed (b always 1)


def test_undetected_without_excitation():
    nl, a, b, out = _and_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 0, b: 0})
    sim = FaultSimulator(nl)
    fl = FaultList(nl, [StuckAtFault(out, 0, OUTPUT_PIN, 0)])
    result = sim.run(patterns, fl)
    assert result.first_detection == [None]
    assert result.coverage() == 0.0


def test_empty_pattern_set():
    nl, *_ = _and_netlist()
    sim = FaultSimulator(nl)
    result = sim.run(PatternSet(nl))
    assert result.pattern_count == 0
    assert result.num_detected == 0


def test_detections_per_pattern_dropping_vs_not():
    nl, a, b, out = _and_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 1})
    patterns.add({a: 1, b: 1})  # identical pattern: detects again w/o drop
    sim = FaultSimulator(nl)
    fl = FaultList(nl, [StuckAtFault(out, 0, OUTPUT_PIN, 0)])
    result = sim.run(patterns, fl)
    assert result.detections_per_pattern(dropping=True) == [1, 0]
    assert result.detections_per_pattern(dropping=False) == [1, 1]
    assert result.detecting_patterns(dropping=True) == {0}
    assert result.detecting_patterns(dropping=False) == {0, 1}


def test_input_pin_fault_is_local_to_gate():
    # b fans out to an AND and an OR; a pin fault on the AND's b-pin must
    # not disturb the OR.
    nl = Netlist("fan")
    a = nl.add_input()
    b = nl.add_input()
    g_and = nl.add_gate(GateType.AND, a, b)   # gate 0
    g_or = nl.add_gate(GateType.OR, a, b)     # gate 1
    nl.mark_output(g_and)
    nl.mark_output(g_or)
    nl.finalize()
    pin_fault = StuckAtFault(b, 0, 1, 1)      # AND pin-b stuck-at-1
    stem_fault = StuckAtFault(b, None, OUTPUT_PIN, 1)
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    sim = FaultSimulator(nl)
    result = sim.run(patterns, FaultList(nl, [pin_fault, stem_fault]))
    # Pin fault flips only the AND output; stem fault also flips the OR.
    assert result.detection_words[0] == 1
    assert result.detection_words[1] == 1
    values = LogicSimulator(nl).run(patterns)
    assert values[g_or] == 1  # OR already 1: stem fault detected via AND


def test_observed_outputs_subset():
    nl = Netlist("obs")
    a = nl.add_input()
    x = nl.add_gate(GateType.NOT, a)
    y = nl.add_gate(GateType.BUF, a)
    nl.mark_output(x)
    nl.mark_output(y)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 0})
    fl = FaultList(nl, [StuckAtFault(y, 1, OUTPUT_PIN, 1)])
    full = FaultSimulator(nl).run(patterns, fl)
    narrowed = FaultSimulator(nl, observed_outputs=[x]).run(patterns, fl)
    assert full.num_detected == 1
    assert narrowed.num_detected == 0


def _brute_force_detection(nl, fault, assignments):
    """Reference: per-pattern scalar simulation with explicit injection."""
    word = 0
    for k, assignment in enumerate(assignments):
        values = {0: 0, 1: 1}
        values.update(assignment)
        faulty = dict(values)
        if fault.is_stem() and fault.gate is None:
            faulty[fault.net] = fault.stuck_at
        for gate in nl.levelized_gates:
            g_ins = tuple(values[n] for n in gate.inputs)
            values[gate.output] = evaluate(gate.gate_type, g_ins, 1)
            f_ins = tuple(faulty[n] for n in gate.inputs)
            if not fault.is_stem() and fault.gate == gate.index:
                f_ins = (f_ins[:fault.pin] + (fault.stuck_at,)
                         + f_ins[fault.pin + 1:])
            out_val = evaluate(gate.gate_type, f_ins, 1)
            if fault.is_stem() and fault.net == gate.output:
                out_val = fault.stuck_at
            faulty[gate.output] = out_val
        if any(values[o] != faulty[o] for o in nl.outputs):
            word |= 1 << k
    return word


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=12, deadline=None)
def test_fault_sim_matches_brute_force_on_random_netlist(seed):
    rng = random.Random(seed)
    nl = Netlist("rand")
    nets = [nl.add_input() for __ in range(4)]
    for __ in range(18):
        gate_type = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR, GateType.NOT,
                                GateType.XNOR, GateType.MUX, GateType.BUF])
        from repro.netlist.gates import ARITY
        ins = [rng.choice(nets) for __ in range(ARITY[gate_type])]
        nets.append(nl.add_gate(gate_type, *ins))
    for net in rng.sample(nets[-8:], 3):
        nl.mark_output(net)
    nl.finalize()

    assignments = [{net: rng.getrandbits(1) for net in nl.inputs}
                   for __ in range(12)]
    patterns = PatternSet(nl)
    for assignment in assignments:
        patterns.add(assignment)

    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    result = FaultSimulator(nl).run(patterns, fault_list)
    for fault, word in zip(fault_list, result.detection_words):
        assert word == _brute_force_detection(nl, fault, assignments), (
            fault.describe(nl))


# -- packed-word bit iteration (exec PR regression pin) ---------------------

def _naive_detections_per_pattern(result):
    """Reference implementation: test every bit of every word directly."""
    counts = [0] * result.pattern_count
    for word in result.detection_words:
        for k in range(result.pattern_count):
            if (word >> k) & 1:
                counts[k] += 1
    return counts


@given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                min_size=0, max_size=12))
@settings(max_examples=60, deadline=None)
def test_detections_per_pattern_matches_naive_bit_loop(words):
    from repro.faults.fault_sim import FaultSimResult, iter_set_bits

    pattern_count = 20
    firsts = [(word & -word).bit_length() - 1 if word else None
              for word in words]
    result = FaultSimResult(fault_list=list(range(len(words))),
                            pattern_count=pattern_count,
                            detection_words=list(words),
                            first_detection=firsts)
    assert (result.detections_per_pattern(dropping=False)
            == _naive_detections_per_pattern(result))
    # The iterator is also what derives first detections and pattern sets.
    naive_hits = {k for word in words for k in range(pattern_count)
                  if (word >> k) & 1}
    assert result.detecting_patterns(dropping=False) == naive_hits
    for word, first in zip(words, firsts):
        bits = list(iter_set_bits(word))
        assert bits == sorted(bits)
        assert (bits[0] if bits else None) == first


def test_detections_per_pattern_counts_sum_to_bitcounts():
    from repro.faults.fault_sim import FaultSimResult

    words = [0b1011, 0b0110, 0, 0b1000]
    result = FaultSimResult(fault_list=[0, 1, 2, 3], pattern_count=4,
                            detection_words=words,
                            first_detection=[0, 1, None, 3])
    counts = result.detections_per_pattern(dropping=False)
    assert sum(counts) == sum(w.bit_count() for w in words)
    # With dropping, each detected fault counts exactly once, at its first
    # detecting pattern.
    dropped = result.detections_per_pattern(dropping=True)
    assert dropped == [1, 1, 0, 1]
    assert sum(dropped) == result.num_detected
