"""Event-driven propagation: schedule structure + cone-walk equivalence.

The load-bearing test is the hypothesis oracle: over random netlists,
random pattern sets, and the full uncollapsed fault list, the event and
batch engines must be bit-identical to the cone-walk engine — same
detection words, same first detections, same SpT signature verdicts
(including truncated MISR widths), under full and subset observability.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultSimError
from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, StuckAtFault
from repro.faults.fault import enumerate_faults
from repro.faults.propagate import _OPCODE, EventDrivenEngine, PropagationSchedule, evaluate_opcode
from repro.netlist import GateType, LogicSimulator, Netlist, PatternSet
from repro.netlist.gates import ARITY, evaluate


def _random_netlist(rng, num_inputs=4, num_gates=18, num_outputs=3):
    nl = Netlist("rand")
    nets = [nl.add_input() for __ in range(num_inputs)]
    for __ in range(num_gates):
        gate_type = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR, GateType.NOT,
                                GateType.XNOR, GateType.MUX, GateType.BUF])
        ins = [rng.choice(nets) for __ in range(ARITY[gate_type])]
        nets.append(nl.add_gate(gate_type, *ins))
    for net in rng.sample(nets[-(num_outputs * 3):], num_outputs):
        nl.mark_output(net)
    nl.finalize()
    return nl


def _random_patterns(rng, nl, count):
    patterns = PatternSet(nl)
    for __ in range(count):
        patterns.add({net: rng.getrandbits(1) for net in nl.inputs})
    return patterns


def _pair(nl, observed=None):
    return (FaultSimulator(nl, observed_outputs=observed, engine="event"),
            FaultSimulator(nl, observed_outputs=observed, engine="cone"))


def _trio(nl, observed=None):
    return _pair(nl, observed) + (
        FaultSimulator(nl, observed_outputs=observed, engine="batch"),)


# -- the equivalence oracle --------------------------------------------------

@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_event_and_batch_engines_are_bit_identical_to_cone_walk(seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, rng.randrange(1, 14))
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    event, cone, batch = _trio(nl)
    ev = event.run(patterns, fault_list)
    cw = cone.run(patterns, fault_list)
    bt = batch.run(patterns, fault_list)
    assert ev.detection_words == cw.detection_words
    assert ev.first_detection == cw.first_detection
    assert bt.detection_words == cw.detection_words
    assert bt.first_detection == cw.first_detection


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_event_and_batch_engines_match_cone_under_subset_observability(seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 8)
    observed = rng.sample(list(nl.outputs),
                          rng.randrange(1, len(set(nl.outputs)) + 1))
    observed = list(dict.fromkeys(observed))
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    event, cone, batch = _trio(nl, observed=observed)
    ev = event.run(patterns, fault_list)
    cw = cone.run(patterns, fault_list)
    assert ev.detection_words == cw.detection_words
    assert batch.run(patterns, fault_list).detection_words == \
        cw.detection_words


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_event_and_batch_signature_verdicts_match_cone(seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    count = rng.randrange(2, 12)
    patterns = _random_patterns(rng, nl, count)
    result_word = list(nl.outputs)
    # Two interleaved threads plus (sometimes) a truncated MISR.
    sequences = {(0, t): [k for k in range(count) if k % 2 == t]
                 for t in range(2)}
    misr_width = rng.choice([None, max(1, len(result_word) - 1)])
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    event, cone, batch = _trio(nl)
    ev_result, ev_sig = event.run_signature(patterns, fault_list,
                                            result_word, sequences,
                                            misr_width=misr_width)
    cw_result, cw_sig = cone.run_signature(patterns, fault_list,
                                           result_word, sequences,
                                           misr_width=misr_width)
    bt_result, bt_sig = batch.run_signature(patterns, fault_list,
                                            result_word, sequences,
                                            misr_width=misr_width)
    assert ev_result.detection_words == cw_result.detection_words
    assert ev_result.first_detection == cw_result.first_detection
    assert ev_sig == cw_sig
    assert bt_result.detection_words == cw_result.detection_words
    assert bt_result.first_detection == cw_result.first_detection
    assert bt_sig == cw_sig


# -- schedule structure ------------------------------------------------------

def test_schedule_levels_fanout_and_cones_match_netlist():
    rng = random.Random(11)
    nl = _random_netlist(rng, num_gates=24)
    schedule = PropagationSchedule(nl)
    assert schedule.depth == nl.logic_depth
    for gate in nl.gates:
        assert schedule.gate_level[gate.index] == nl.net_level(gate.output)
        assert schedule.gate_level[gate.index] >= 1
        for net in gate.inputs:
            assert nl.net_level(net) < schedule.gate_level[gate.index]
    for net in range(nl.num_nets):
        assert list(schedule.fanout[net]) == list(nl.fanout_gates(net))
        assert schedule.cone_size(net) == len(nl.cone_from_net(net))


def test_schedule_reach_marks_exactly_the_input_cones_of_targets():
    rng = random.Random(12)
    nl = _random_netlist(rng, num_gates=24)
    schedule = PropagationSchedule(nl)
    targets = frozenset(nl.outputs)
    reach = schedule.reach_from(targets)
    for net in range(nl.num_nets):
        # A net reaches the targets iff it is one or some target's driver
        # lies in its fanout cone.
        cone_nets = {net} | {nl.gates[g].output for g in nl.cone_from_net(
            net)}
        assert reach[net] == bool(cone_nets & targets)
    # Cached per target set (frozenset-keyed).
    assert schedule.reach_from(targets) is reach


def test_schedule_seed_net_for_stem_and_pin_faults():
    nl = Netlist("seed")
    a = nl.add_input()
    b = nl.add_input()
    out = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(out)
    nl.finalize()
    schedule = PropagationSchedule(nl)
    assert schedule.seed_net(StuckAtFault(a, None, OUTPUT_PIN, 0)) == a
    assert schedule.seed_net(StuckAtFault(a, 0, 0, 1)) == out


def test_evaluate_opcode_matches_gate_evaluate():
    rng = random.Random(13)
    mask = (1 << 6) - 1
    for gate_type, opcode in _OPCODE.items():
        for __ in range(20):
            values = tuple(rng.getrandbits(6)
                           for __ in range(ARITY[gate_type]))
            assert (evaluate_opcode(opcode, values, mask)
                    == evaluate(gate_type, values, mask))
    with pytest.raises(FaultSimError):
        evaluate_opcode(99, (0,), mask)


# -- engine behaviour --------------------------------------------------------

def _dying_chain():
    """a AND 0-held b, then a BUF chain: a stem fault on `a` is excited
    but its effect dies at the first gate."""
    nl = Netlist("chain")
    a = nl.add_input()
    b = nl.add_input()
    net = nl.add_gate(GateType.AND, a, b)
    for __ in range(4):
        net = nl.add_gate(GateType.BUF, net)
    nl.mark_output(net)
    nl.finalize()
    return nl, a, b


def test_frontier_death_stops_the_walk_early():
    nl, a, b = _dying_chain()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    engine = EventDrivenEngine(nl)
    good = LogicSimulator(nl).run(patterns)
    good_list = [0] * nl.num_nets
    for net, value in good.items():
        good_list[net] = value
    fault = StuckAtFault(a, None, OUTPUT_PIN, 0)
    faulty, changed = engine.propagate(fault, good_list, patterns.mask)
    # Only the AND was evaluated; it killed the effect (0 AND 0 == 1 AND 0)
    # and none of the 4 downstream BUFs ran.
    assert engine.last_evaluated == 1
    assert changed == [a]
    assert faulty[nl.outputs[0]] == good_list[nl.outputs[0]]


def test_unexcited_fault_short_circuits():
    nl, a, b = _dying_chain()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    engine = EventDrivenEngine(nl)
    good_list = [0] * nl.num_nets
    good_list[a] = 1
    fault = StuckAtFault(a, None, OUTPUT_PIN, 1)  # a already 1 everywhere
    assert engine.seed_value(fault, good_list, patterns.mask) is None
    assert engine.propagate(fault, good_list, patterns.mask) == (None, None)


def test_event_stats_report_skipped_gates_and_cone_reports_none():
    nl, a, b = _dying_chain()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    fault_list = FaultList(nl, [StuckAtFault(a, None, OUTPUT_PIN, 0)])
    event, cone = _pair(nl)
    event.run(patterns, fault_list)
    cone.run(patterns, fault_list)
    # The static cone of `a` holds 5 gates; the frontier died after 1.
    assert event.stats["gates_evaluated"] == 1
    assert event.stats["gates_skipped"] == 4
    assert event.stats["gates_visited"] == 1
    assert cone.stats["gates_skipped"] == 0
    assert cone.stats["gates_visited"] == 5
    assert cone.stats["gates_evaluated"] == 1


def test_unobservable_cone_head_is_pruned():
    # y's cone contains no observed output when observation is narrowed
    # to x, so its faults never propagate at all.
    nl = Netlist("prune")
    a = nl.add_input()
    x = nl.add_gate(GateType.NOT, a)
    y = nl.add_gate(GateType.BUF, a)
    z = nl.add_gate(GateType.BUF, y)
    nl.mark_output(x)
    nl.mark_output(z)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 0})
    fault_list = FaultList(nl, [StuckAtFault(y, 1, OUTPUT_PIN, 1)])
    event = FaultSimulator(nl, observed_outputs=[x], engine="event")
    result = event.run(patterns, fault_list)
    assert result.detection_words == [0]
    assert event.stats["faults_pruned"] == 1
    assert event.stats["gates_evaluated"] == 0
    cone = FaultSimulator(nl, observed_outputs=[x], engine="cone")
    assert cone.run(patterns, fault_list).detection_words == [0]


def test_unknown_engine_is_rejected():
    nl, __, __ = _dying_chain()
    with pytest.raises(FaultSimError):
        FaultSimulator(nl, engine="warp")


def test_fault_grouping_keeps_fault_list_order():
    # Faults sharing a cone head are grouped for setup, but the detection
    # words must land at their original fault-list positions.
    nl = Netlist("group")
    a = nl.add_input()
    b = nl.add_input()
    g = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(g)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 1})
    patterns.add({a: 0, b: 1})
    faults = [
        StuckAtFault(g, 0, OUTPUT_PIN, 0),   # head g
        StuckAtFault(a, None, OUTPUT_PIN, 1),  # head a
        StuckAtFault(a, 0, 0, 0),            # pin fault, head g again
        StuckAtFault(g, 0, OUTPUT_PIN, 1),   # head g
    ]
    fault_list = FaultList(nl, faults)
    event, cone = _pair(nl)
    ev = event.run(patterns, fault_list)
    cw = cone.run(patterns, fault_list)
    assert ev.detection_words == cw.detection_words
    assert ev.detection_words == [0b01, 0b10, 0b01, 0b10]
