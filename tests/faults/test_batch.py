"""Batch engine specifics: compilation caches, padding, stats, gating.

Bit-identity to the cone walk is the hypothesis oracle's job
(tests/faults/test_propagate.py, tests/exec/test_differential.py); this
file covers what the oracle can't see — the numpy gate, row/batch layout
edges (fault counts that don't fill a batch, dedicated-seed slots reused
across batches), the ``batches`` stats counter, prepared-run cache
replay, and the pattern-mutation memoization regression.
"""

import random

import pytest

from repro.errors import FaultSimError
from repro.exec import RunMetrics, ShardedFaultScheduler
from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, StuckAtFault
from repro.faults.batch import DEFAULT_ROWS, BatchFaultEngine, pattern_state
from repro.faults.fault import enumerate_faults
from repro.netlist import GateType, LogicSimulator, Netlist, PatternSet
from repro.netlist.gates import ARITY


def _random_netlist(rng, num_inputs=4, num_gates=18, num_outputs=3):
    nl = Netlist("rand")
    nets = [nl.add_input() for __ in range(num_inputs)]
    for __ in range(num_gates):
        gate_type = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR, GateType.NOT,
                                GateType.XNOR, GateType.MUX, GateType.BUF])
        ins = [rng.choice(nets) for __ in range(ARITY[gate_type])]
        nets.append(nl.add_gate(gate_type, *ins))
    for net in rng.sample(nets[-(num_outputs * 3):], num_outputs):
        nl.mark_output(net)
    nl.finalize()
    return nl


def _random_patterns(rng, nl, count):
    patterns = PatternSet(nl)
    for __ in range(count):
        patterns.add({net: rng.getrandbits(1) for net in nl.inputs})
    return patterns


# -- construction gates ------------------------------------------------------

def test_batch_engine_requires_numpy(monkeypatch):
    import repro.faults.batch as batch_mod
    nl = _random_netlist(random.Random(0))
    monkeypatch.setattr(batch_mod, "_np", None)
    with pytest.raises(FaultSimError, match="numpy"):
        BatchFaultEngine(nl)
    with pytest.raises(FaultSimError, match="numpy"):
        pattern_state(PatternSet(nl), {}, nl.num_nets)


@pytest.mark.parametrize("rows", [0, -4, 2.5, "32"])
def test_batch_engine_rejects_bad_rows(rows):
    nl = _random_netlist(random.Random(0))
    with pytest.raises(FaultSimError, match="rows"):
        BatchFaultEngine(nl, rows=rows)


def test_batch_rows_property_only_for_batch_engine():
    nl = _random_netlist(random.Random(1))
    assert FaultSimulator(nl, engine="batch").batch_rows == DEFAULT_ROWS
    assert FaultSimulator(nl, engine="event").batch_rows is None
    assert FaultSimulator(nl, engine="cone").batch_rows is None


# -- batch layout edges ------------------------------------------------------

def _engine_words(nl, patterns, fault_list, rows):
    """Run BatchFaultEngine directly (small row counts force multi-batch
    runs and padded final batches on tiny netlists)."""
    engine = BatchFaultEngine(nl, rows=rows)
    state = pattern_state(patterns, LogicSimulator(nl).run(patterns),
                          nl.num_nets)
    targets = frozenset(nl.outputs)
    stats = {"gates_evaluated": 0, "gates_visited": 0, "gates_skipped": 0,
             "faults_inactive": 0, "faults_pruned": 0, "batches": 0}
    words, __ = engine.run(list(fault_list), state, targets, set(targets),
                           stats)
    return words, stats


@pytest.mark.parametrize("rows", [1, 2, 3, 7])
def test_partial_final_batch_and_small_rows_match_cone(rows):
    # Fault counts that don't divide by `rows` exercise row padding; the
    # dedicated input-seed slots are re-forced per batch, so stale rows
    # from the previous batch must never leak through (regression: slots
    # only overwritten for their own rows carried old diffs).
    rng = random.Random(7)
    for seed in range(6):
        nl = _random_netlist(rng, num_gates=rng.randrange(4, 22))
        patterns = _random_patterns(rng, nl, rng.randrange(1, 9))
        fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
        reference = FaultSimulator(nl, engine="cone").run(patterns,
                                                          fault_list)
        words, stats = _engine_words(nl, patterns, fault_list, rows)
        assert words == reference.detection_words
        active = len(fault_list) - stats["faults_inactive"] - \
            stats["faults_pruned"]
        assert stats["batches"] == -(-active // rows) if active else 0


def test_multi_batch_run_counts_batches():
    rng = random.Random(21)
    nl = _random_netlist(rng, num_gates=40, num_outputs=4)
    patterns = _random_patterns(rng, nl, 12)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="batch")
    result = simulator.run(patterns, fault_list)
    reference = FaultSimulator(nl, engine="cone").run(patterns, fault_list)
    assert result.detection_words == reference.detection_words
    assert simulator.stats["batches"] >= 1
    assert simulator.stats["gates_evaluated"] > 0
    assert simulator.stats["gates_visited"] == \
        simulator.stats["gates_evaluated"]


def test_prepared_run_cache_replays_stats_and_results():
    rng = random.Random(5)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 6)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="batch")
    first = simulator.run(patterns, fault_list)
    snapshot = dict(simulator.stats)
    # Same (patterns, fault list, observability): the prepared-run cache
    # skips row building but must still report identical results and
    # re-count per-run stats.
    second = simulator.run(patterns, fault_list)
    assert second.detection_words == first.detection_words
    assert second.first_detection == first.first_detection
    for key, value in snapshot.items():
        assert simulator.stats[key] == 2 * value


def test_empty_pattern_set_detects_nothing():
    nl = _random_netlist(random.Random(3))
    patterns = PatternSet(nl)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="batch")
    result = simulator.run(patterns, fault_list)
    assert result.detection_words == [0] * len(fault_list)
    assert simulator.stats["batches"] == 0


# -- memoization regressions -------------------------------------------------

def _and_netlist():
    nl = Netlist("memo")
    a = nl.add_input()
    b = nl.add_input()
    g = nl.add_gate(GateType.AND, a, b)
    nl.mark_output(g)
    nl.finalize()
    return nl, a, b, g


@pytest.mark.parametrize("engine", ["cone", "event", "batch"])
def test_pattern_mutation_between_runs_is_not_served_stale(engine):
    # Regression: good values / packed states were memoized on the
    # PatternSet's identity alone, so adding patterns after a run kept
    # serving the old good machine.  sa0 on the AND output is only
    # detected by the (1, 1) pattern, which arrives in the second add.
    nl, a, b, g = _and_netlist()
    fault_list = FaultList(nl, [StuckAtFault(g, 0, OUTPUT_PIN, 0)])
    simulator = FaultSimulator(nl, engine=engine)
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    assert simulator.run(patterns, fault_list).detection_words == [0b0]
    patterns.add({a: 1, b: 1})
    assert simulator.run(patterns, fault_list).detection_words == [0b10]


@pytest.mark.parametrize("engine", ["cone", "event", "batch"])
def test_pooled_workers_reprime_mutated_pattern_sets(engine):
    # The worker-side pattern cache keys on (id, count, version): a set
    # mutated between pooled runs must be re-shipped, not replayed.
    nl, a, b, g = _and_netlist()
    fault_list = FaultList(nl, [StuckAtFault(g, 0, OUTPUT_PIN, 0)])
    simulator = FaultSimulator(nl, engine=engine)
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    with ShardedFaultScheduler(jobs=2, min_faults_per_shard=1,
                               metrics=RunMetrics()) as scheduler:
        assert scheduler.run(simulator, patterns,
                             fault_list).detection_words == [0b0]
        patterns.add({a: 1, b: 1})
        assert scheduler.run(simulator, patterns,
                             fault_list).detection_words == [0b10]
