from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'A Compaction Method for STLs for GPU "
                 "in-field test' (DATE 2022)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
